// The large-scale generator families behind the fig_scale study: star,
// ring-with-chords mesh, deep k-ary tree, and linear chains — the classic
// parameterized shapes SDN testbeds generate (star / mesh / tree / linear).
// Each builds a single-session topology with the source as controller, the
// constrained links recorded as Bottlenecks, and per-receiver optimal
// levels derived from the min capacity along the path, so every family
// plugs into the same experiments and fault-injection machinery as the
// paper's canonical topologies.
//
// All four are deterministic per (config, seed): nodes are created in
// nested loops in a fixed order, and any capacity jitter comes from a
// seeded generator.
package topology

import (
	"fmt"
	"math/rand"

	"toposense/internal/netsim"
	"toposense/internal/sim"
	"toposense/internal/source"
)

// StarConfig parameterizes a star: the source feeds a hub from which Arms
// access links (the bottlenecks) fan out, each ending in a gateway with
// ReceiversPerArm receivers. With Jitter > 0 the arm bandwidths spread
// ±Jitter around Bandwidth, giving a wide flat field of heterogeneous
// constraints — 10^5 receivers is arms=1000, rxarm=100.
type StarConfig struct {
	Arms            int     // access arms off the hub; 0 means 8
	ReceiversPerArm int     // receivers per arm gateway; 0 means 4
	Bandwidth       float64 // nominal arm bandwidth in bits/s; 0 means 500e3
	Jitter          float64 // arm bandwidth spread as a fraction in [0, 1)
	Seed            int64   // jitter seed
	Delay           sim.Time
	QueueLimit      int
	Layers          int
}

// Validate implements Config.
func (c *StarConfig) Validate() error {
	switch {
	case c.Arms < 0:
		return fmt.Errorf("topology star: Arms %d is negative", c.Arms)
	case c.ReceiversPerArm < 0:
		return fmt.Errorf("topology star: ReceiversPerArm %d is negative", c.ReceiversPerArm)
	case c.Bandwidth < 0:
		return fmt.Errorf("topology star: Bandwidth %g is negative", c.Bandwidth)
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("topology star: Jitter %g out of range [0, 1)", c.Jitter)
	case c.Delay < 0:
		return fmt.Errorf("topology star: Delay %v is negative", c.Delay)
	case c.QueueLimit < 0:
		return fmt.Errorf("topology star: QueueLimit %d is negative", c.QueueLimit)
	}
	if err := validLayers(c.Layers); err != nil {
		return fmt.Errorf("topology star: %w", err)
	}
	return nil
}

func (c StarConfig) withDefaults() StarConfig {
	if c.Arms == 0 {
		c.Arms = 8
	}
	if c.ReceiversPerArm == 0 {
		c.ReceiversPerArm = 4
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 500e3
	}
	if c.Delay == 0 {
		c.Delay = DefaultDelay
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.Layers == 0 {
		c.Layers = source.DefaultLayers
	}
	return c
}

// Generate implements Config.
func (c *StarConfig) Generate(e sim.Scheduler) (*Build, error) {
	cfg := c.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netsim.New(e)
	rates := source.Rates(cfg.Layers)
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	src := n.AddNode("src")
	hub := n.AddNode("hub")
	n.Connect(src, hub, fat)
	b := &Build{
		Net:        n,
		Sources:    []*netsim.Node{src},
		Controller: src,
		Receivers:  [][]*netsim.Node{nil},
		Optimal:    [][]int{nil},
		// Partition cut: src and hub in domain 0, each arm (gateway plus
		// its receivers) its own domain behind the hub-gateway link.
		Domains: []int{0, 0},
	}
	for a := 0; a < cfg.Arms; a++ {
		bw := cfg.Bandwidth
		if cfg.Jitter > 0 {
			bw *= 1 - cfg.Jitter + 2*cfg.Jitter*rng.Float64()
		}
		gw := n.AddNode(fmt.Sprintf("arm%d", a))
		b.Domains = append(b.Domains, a+1)
		down, _ := n.Connect(hub, gw, netsim.LinkConfig{Bandwidth: bw, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit})
		b.Bottlenecks = append(b.Bottlenecks, down)
		opt := source.LevelForBandwidth(rates, bw)
		for i := 0; i < cfg.ReceiversPerArm; i++ {
			rx := n.AddNode(fmt.Sprintf("arm%d-rx%d", a, i))
			b.Domains = append(b.Domains, a+1)
			n.Connect(gw, rx, fat)
			b.Receivers[0] = append(b.Receivers[0], rx)
			b.Optimal[0] = append(b.Optimal[0], opt)
		}
	}
	return b, nil
}

// MeshConfig parameterizes a ring of routers with periodic cross-chords —
// the classic ring+cross mesh. The source feeds ring router 0; every ring
// router serves a gateway over an access link (the bottleneck) with
// ReceiversPerRouter receivers behind it. The chords create route
// diversity: this is the family with cycles, so it exercises the dense BFS
// routing (and its tie-breaks) rather than the tree fast path, and its
// scale ceiling is the O(N²) routing table, not the forwarding state.
type MeshConfig struct {
	Routers            int      // ring routers; 0 means 8 (minimum 3)
	CrossEvery         int      // a chord to the antipodal router every this many ring hops; 0 means 4
	ReceiversPerRouter int      // receivers behind each ring router; 0 means 2
	Access             float64  // access-link bandwidth in bits/s; 0 means 500e3
	Ring               float64  // ring and chord bandwidth; 0 means FatBandwidth
	Delay              sim.Time // 0 means 20 ms (paths cross many ring hops)
	QueueLimit         int
	Layers             int
}

// Validate implements Config.
func (c *MeshConfig) Validate() error {
	switch {
	case c.Routers < 0:
		return fmt.Errorf("topology mesh: Routers %d is negative", c.Routers)
	case c.Routers > 0 && c.Routers < 3:
		return fmt.Errorf("topology mesh: Routers %d, want >= 3 for a ring", c.Routers)
	case c.CrossEvery < 0:
		return fmt.Errorf("topology mesh: CrossEvery %d is negative", c.CrossEvery)
	case c.ReceiversPerRouter < 0:
		return fmt.Errorf("topology mesh: ReceiversPerRouter %d is negative", c.ReceiversPerRouter)
	case c.Access < 0 || c.Ring < 0:
		return fmt.Errorf("topology mesh: bandwidths must be positive (got %g, %g)", c.Access, c.Ring)
	case c.Delay < 0:
		return fmt.Errorf("topology mesh: Delay %v is negative", c.Delay)
	case c.QueueLimit < 0:
		return fmt.Errorf("topology mesh: QueueLimit %d is negative", c.QueueLimit)
	}
	if err := validLayers(c.Layers); err != nil {
		return fmt.Errorf("topology mesh: %w", err)
	}
	return nil
}

func (c MeshConfig) withDefaults() MeshConfig {
	if c.Routers == 0 {
		c.Routers = 8
	}
	if c.CrossEvery == 0 {
		c.CrossEvery = 4
	}
	if c.ReceiversPerRouter == 0 {
		c.ReceiversPerRouter = 2
	}
	if c.Access == 0 {
		c.Access = 500e3
	}
	if c.Ring == 0 {
		c.Ring = FatBandwidth
	}
	if c.Delay == 0 {
		c.Delay = 20 * sim.Millisecond
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.Layers == 0 {
		c.Layers = source.DefaultLayers
	}
	return c
}

// Generate implements Config.
func (c *MeshConfig) Generate(e sim.Scheduler) (*Build, error) {
	cfg := c.withDefaults()
	n := netsim.New(e)
	rates := source.Rates(cfg.Layers)
	ring := netsim.LinkConfig{Bandwidth: cfg.Ring, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	src := n.AddNode("src")
	routers := make([]*netsim.Node, cfg.Routers)
	for i := range routers {
		routers[i] = n.AddNode(fmt.Sprintf("m%d", i))
	}
	n.Connect(src, routers[0], ring)
	for i := range routers {
		n.Connect(routers[i], routers[(i+1)%cfg.Routers], ring)
	}
	// Chords to the antipodal router, every CrossEvery positions around the
	// first half of the ring (the second half would duplicate them).
	for i := 0; i < cfg.Routers/2; i += cfg.CrossEvery {
		j := i + cfg.Routers/2
		if j != (i+1)%cfg.Routers && i != (j+1)%cfg.Routers {
			n.Connect(routers[i], routers[j], ring)
		}
	}
	b := &Build{
		Net:        n,
		Sources:    []*netsim.Node{src},
		Controller: src,
		Receivers:  [][]*netsim.Node{nil},
		Optimal:    [][]int{nil},
	}
	minBW := cfg.Access
	if cfg.Ring < minBW {
		minBW = cfg.Ring
	}
	opt := source.LevelForBandwidth(rates, minBW)
	for i, r := range routers {
		gw := n.AddNode(fmt.Sprintf("m%d-gw", i))
		down, _ := n.Connect(r, gw, netsim.LinkConfig{Bandwidth: cfg.Access, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit})
		b.Bottlenecks = append(b.Bottlenecks, down)
		for k := 0; k < cfg.ReceiversPerRouter; k++ {
			rx := n.AddNode(fmt.Sprintf("m%d-rx%d", i, k))
			n.Connect(gw, rx, fat)
			b.Receivers[0] = append(b.Receivers[0], rx)
			b.Optimal[0] = append(b.Optimal[0], opt)
		}
	}
	return b, nil
}

// TreeConfig parameterizes a deep k-ary tree rooted at the source: Depth
// interior levels of Branch children each, with the deepest-tier links (the
// last hop into each leaf gateway) at Leaf bandwidth — the shared
// bottlenecks — and everything above at Backbone. ReceiversPerLeaf
// receivers hang off each leaf gateway over fat links. This is the
// fig_scale workhorse: depth=4, branch=10, rxleaf=10 is 10^5 receivers
// behind 11 111 interior routers, all routed by the O(N) tree tables.
type TreeConfig struct {
	Depth            int      // interior levels below the root; 0 means 3
	Branch           int      // children per interior node; 0 means 4
	ReceiversPerLeaf int      // receivers per deepest-tier gateway; 0 means 2
	Backbone         float64  // interior link bandwidth; 0 means FatBandwidth
	Leaf             float64  // deepest-tier link bandwidth (the bottleneck); 0 means 500e3
	Jitter           float64  // leaf bandwidth spread as a fraction in [0, 1)
	Seed             int64    // jitter seed
	Delay            sim.Time // 0 means 50 ms (deep paths still converse in sub-second RTTs)
	QueueLimit       int
	Layers           int
}

// Validate implements Config.
func (c *TreeConfig) Validate() error {
	switch {
	case c.Depth < 0:
		return fmt.Errorf("topology tree: Depth %d is negative", c.Depth)
	case c.Branch < 0:
		return fmt.Errorf("topology tree: Branch %d is negative", c.Branch)
	case c.ReceiversPerLeaf < 0:
		return fmt.Errorf("topology tree: ReceiversPerLeaf %d is negative", c.ReceiversPerLeaf)
	case c.Backbone < 0 || c.Leaf < 0:
		return fmt.Errorf("topology tree: bandwidths must be positive (got %g, %g)", c.Backbone, c.Leaf)
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("topology tree: Jitter %g out of range [0, 1)", c.Jitter)
	case c.Delay < 0:
		return fmt.Errorf("topology tree: Delay %v is negative", c.Delay)
	case c.QueueLimit < 0:
		return fmt.Errorf("topology tree: QueueLimit %d is negative", c.QueueLimit)
	}
	if err := validLayers(c.Layers); err != nil {
		return fmt.Errorf("topology tree: %w", err)
	}
	return nil
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.Depth == 0 {
		c.Depth = 3
	}
	if c.Branch == 0 {
		c.Branch = 4
	}
	if c.ReceiversPerLeaf == 0 {
		c.ReceiversPerLeaf = 2
	}
	if c.Backbone == 0 {
		c.Backbone = FatBandwidth
	}
	if c.Leaf == 0 {
		c.Leaf = 500e3
	}
	if c.Delay == 0 {
		c.Delay = 50 * sim.Millisecond
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.Layers == 0 {
		c.Layers = source.DefaultLayers
	}
	return c
}

// Generate implements Config.
func (c *TreeConfig) Generate(e sim.Scheduler) (*Build, error) {
	cfg := c.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netsim.New(e)
	rates := source.Rates(cfg.Layers)
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	src := n.AddNode("src")
	b := &Build{
		Net:        n,
		Sources:    []*netsim.Node{src},
		Controller: src,
		Receivers:  [][]*netsim.Node{nil},
		Optimal:    [][]int{nil},
	}
	// Partition cut: the source alone is domain 0; each root-child
	// subtree (a level-1 node with everything below it) is one domain, so
	// the only boundary links are the root's downlinks.
	b.Domains = []int{0}
	frontier := []*netsim.Node{src}
	frontierDom := []int{0}
	for level := 1; level <= cfg.Depth; level++ {
		leafTier := level == cfg.Depth
		next := make([]*netsim.Node, 0, len(frontier)*cfg.Branch)
		nextDom := make([]int, 0, cap(next))
		for pi, parent := range frontier {
			for k := 0; k < cfg.Branch; k++ {
				child := n.AddNode(fmt.Sprintf("k%d-%d", level, len(next)))
				dom := frontierDom[pi]
				if level == 1 {
					dom = k + 1
				}
				b.Domains = append(b.Domains, dom)
				bw := cfg.Backbone
				if leafTier {
					bw = cfg.Leaf
					if cfg.Jitter > 0 {
						bw *= 1 - cfg.Jitter + 2*cfg.Jitter*rng.Float64()
					}
				}
				down, _ := n.Connect(parent, child, netsim.LinkConfig{
					Bandwidth: bw, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit,
				})
				if leafTier {
					b.Bottlenecks = append(b.Bottlenecks, down)
					opt := source.LevelForBandwidth(rates, bw)
					if cfg.Backbone < bw {
						opt = source.LevelForBandwidth(rates, cfg.Backbone)
					}
					for i := 0; i < cfg.ReceiversPerLeaf; i++ {
						rx := n.AddNode(fmt.Sprintf("%s-rx%d", child.Name, i))
						b.Domains = append(b.Domains, dom)
						n.Connect(child, rx, fat)
						b.Receivers[0] = append(b.Receivers[0], rx)
						b.Optimal[0] = append(b.Optimal[0], opt)
					}
				}
				next = append(next, child)
				nextDom = append(nextDom, dom)
			}
		}
		frontier, frontierDom = next, nextDom
	}
	return b, nil
}

// LinearConfig parameterizes parallel chains: the source feeds Chains
// independent linear chains of Length routers connected by Bandwidth links
// (each chain's first hop is recorded as its bottleneck — every chain link
// has the same capacity, and the multicast stream crosses each exactly
// once). ReceiversPerHop receivers hang off every chain router. Long
// chains stress path depth: queueing, propagation pipelining, and graft
// walks of Length hops.
type LinearConfig struct {
	Chains          int      // parallel chains; 0 means 2
	Length          int      // routers per chain; 0 means 5
	ReceiversPerHop int      // receivers per chain router; 0 means 1
	Bandwidth       float64  // chain link bandwidth in bits/s; 0 means 500e3
	Delay           sim.Time // 0 means 5 ms (a 100-hop chain still has a sane RTT)
	QueueLimit      int
	Layers          int
}

// Validate implements Config.
func (c *LinearConfig) Validate() error {
	switch {
	case c.Chains < 0:
		return fmt.Errorf("topology linear: Chains %d is negative", c.Chains)
	case c.Length < 0:
		return fmt.Errorf("topology linear: Length %d is negative", c.Length)
	case c.ReceiversPerHop < 0:
		return fmt.Errorf("topology linear: ReceiversPerHop %d is negative", c.ReceiversPerHop)
	case c.Bandwidth < 0:
		return fmt.Errorf("topology linear: Bandwidth %g is negative", c.Bandwidth)
	case c.Delay < 0:
		return fmt.Errorf("topology linear: Delay %v is negative", c.Delay)
	case c.QueueLimit < 0:
		return fmt.Errorf("topology linear: QueueLimit %d is negative", c.QueueLimit)
	}
	if err := validLayers(c.Layers); err != nil {
		return fmt.Errorf("topology linear: %w", err)
	}
	return nil
}

func (c LinearConfig) withDefaults() LinearConfig {
	if c.Chains == 0 {
		c.Chains = 2
	}
	if c.Length == 0 {
		c.Length = 5
	}
	if c.ReceiversPerHop == 0 {
		c.ReceiversPerHop = 1
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 500e3
	}
	if c.Delay == 0 {
		c.Delay = 5 * sim.Millisecond
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.Layers == 0 {
		c.Layers = source.DefaultLayers
	}
	return c
}

// Generate implements Config.
func (c *LinearConfig) Generate(e sim.Scheduler) (*Build, error) {
	cfg := c.withDefaults()
	n := netsim.New(e)
	rates := source.Rates(cfg.Layers)
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	chainLink := netsim.LinkConfig{Bandwidth: cfg.Bandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	src := n.AddNode("src")
	b := &Build{
		Net:        n,
		Sources:    []*netsim.Node{src},
		Controller: src,
		Receivers:  [][]*netsim.Node{nil},
		Optimal:    [][]int{nil},
	}
	opt := source.LevelForBandwidth(rates, cfg.Bandwidth)
	// Partition cut: the source alone is domain 0; each chain (routers
	// plus their receivers) is one domain behind its first chain link.
	b.Domains = []int{0}
	for ch := 0; ch < cfg.Chains; ch++ {
		prev := src
		for h := 0; h < cfg.Length; h++ {
			node := n.AddNode(fmt.Sprintf("c%d-%d", ch, h))
			b.Domains = append(b.Domains, ch+1)
			down, _ := n.Connect(prev, node, chainLink)
			if h == 0 {
				b.Bottlenecks = append(b.Bottlenecks, down)
			}
			for k := 0; k < cfg.ReceiversPerHop; k++ {
				rx := n.AddNode(fmt.Sprintf("c%d-%d-rx%d", ch, h, k))
				b.Domains = append(b.Domains, ch+1)
				n.Connect(node, rx, fat)
				b.Receivers[0] = append(b.Receivers[0], rx)
				b.Optimal[0] = append(b.Optimal[0], opt)
			}
			prev = node
		}
	}
	return b, nil
}

func init() {
	Register(Generator{
		Name:  "star",
		Title: "Star: hub fanning into per-arm bottleneck access links",
		New:   func() Config { return &StarConfig{} },
		Keys: []Key{
			key("arms", "access arms off the hub (default 8)", func(c *StarConfig, v string) error { return parseInt(&c.Arms, v) }),
			key("rxarm", "receivers per arm (default 4)", func(c *StarConfig, v string) error { return parseInt(&c.ReceiversPerArm, v) }),
			key("bw", "nominal arm bandwidth in bits/s (default 500e3)", func(c *StarConfig, v string) error { return parseFloat(&c.Bandwidth, v) }),
			key("jitter", "arm bandwidth spread fraction in [0,1) (default 0)", func(c *StarConfig, v string) error { return parseFloat(&c.Jitter, v) }),
			key("seed", "jitter seed (default 0)", func(c *StarConfig, v string) error { return parseInt64(&c.Seed, v) }),
			key("delay", "per-link propagation delay in seconds (default 0.2)", func(c *StarConfig, v string) error { return parseSeconds(&c.Delay, v) }),
			key("queue", "drop-tail queue limit in packets (default 20)", func(c *StarConfig, v string) error { return parseInt(&c.QueueLimit, v) }),
			key("layers", "session layers (default 6)", func(c *StarConfig, v string) error { return parseInt(&c.Layers, v) }),
		},
	})
	Register(Generator{
		Name:  "mesh",
		Title: "Mesh: router ring with cross-chords, receivers on access links",
		New:   func() Config { return &MeshConfig{} },
		Keys: []Key{
			key("routers", "ring routers (default 8, min 3)", func(c *MeshConfig, v string) error { return parseInt(&c.Routers, v) }),
			key("cross", "chord to the antipode every this many ring hops (default 4)", func(c *MeshConfig, v string) error { return parseInt(&c.CrossEvery, v) }),
			key("rxrouter", "receivers behind each ring router (default 2)", func(c *MeshConfig, v string) error { return parseInt(&c.ReceiversPerRouter, v) }),
			key("access", "access-link bandwidth in bits/s (default 500e3)", func(c *MeshConfig, v string) error { return parseFloat(&c.Access, v) }),
			key("ring", "ring and chord bandwidth in bits/s (default 100e6)", func(c *MeshConfig, v string) error { return parseFloat(&c.Ring, v) }),
			key("delay", "per-link propagation delay in seconds (default 0.02)", func(c *MeshConfig, v string) error { return parseSeconds(&c.Delay, v) }),
			key("queue", "drop-tail queue limit in packets (default 20)", func(c *MeshConfig, v string) error { return parseInt(&c.QueueLimit, v) }),
			key("layers", "session layers (default 6)", func(c *MeshConfig, v string) error { return parseInt(&c.Layers, v) }),
		},
	})
	Register(Generator{
		Name:  "tree",
		Title: "Deep k-ary tree: bottleneck links at the deepest tier",
		New:   func() Config { return &TreeConfig{} },
		Keys: []Key{
			key("depth", "interior levels below the root (default 3)", func(c *TreeConfig, v string) error { return parseInt(&c.Depth, v) }),
			key("branch", "children per interior node (default 4)", func(c *TreeConfig, v string) error { return parseInt(&c.Branch, v) }),
			key("rxleaf", "receivers per leaf gateway (default 2)", func(c *TreeConfig, v string) error { return parseInt(&c.ReceiversPerLeaf, v) }),
			key("backbone", "interior link bandwidth in bits/s (default 100e6)", func(c *TreeConfig, v string) error { return parseFloat(&c.Backbone, v) }),
			key("leaf", "deepest-tier link bandwidth in bits/s (default 500e3)", func(c *TreeConfig, v string) error { return parseFloat(&c.Leaf, v) }),
			key("jitter", "leaf bandwidth spread fraction in [0,1) (default 0)", func(c *TreeConfig, v string) error { return parseFloat(&c.Jitter, v) }),
			key("seed", "jitter seed (default 0)", func(c *TreeConfig, v string) error { return parseInt64(&c.Seed, v) }),
			key("delay", "per-link propagation delay in seconds (default 0.05)", func(c *TreeConfig, v string) error { return parseSeconds(&c.Delay, v) }),
			key("queue", "drop-tail queue limit in packets (default 20)", func(c *TreeConfig, v string) error { return parseInt(&c.QueueLimit, v) }),
			key("layers", "session layers (default 6)", func(c *TreeConfig, v string) error { return parseInt(&c.Layers, v) }),
		},
	})
	Register(Generator{
		Name:  "linear",
		Title: "Linear: parallel chains of routers, receivers at every hop",
		New:   func() Config { return &LinearConfig{} },
		Keys: []Key{
			key("chains", "parallel chains (default 2)", func(c *LinearConfig, v string) error { return parseInt(&c.Chains, v) }),
			key("length", "routers per chain (default 5)", func(c *LinearConfig, v string) error { return parseInt(&c.Length, v) }),
			key("rxhop", "receivers per chain router (default 1)", func(c *LinearConfig, v string) error { return parseInt(&c.ReceiversPerHop, v) }),
			key("bw", "chain link bandwidth in bits/s (default 500e3)", func(c *LinearConfig, v string) error { return parseFloat(&c.Bandwidth, v) }),
			key("delay", "per-link propagation delay in seconds (default 0.005)", func(c *LinearConfig, v string) error { return parseSeconds(&c.Delay, v) }),
			key("queue", "drop-tail queue limit in packets (default 20)", func(c *LinearConfig, v string) error { return parseInt(&c.QueueLimit, v) }),
			key("layers", "session layers (default 6)", func(c *LinearConfig, v string) error { return parseInt(&c.Layers, v) }),
		},
	})
}
