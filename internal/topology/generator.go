package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"toposense/internal/sim"
)

// Config is a validated, buildable topology parameterization. Every
// generator family (Topology A, B, the tiered Internet, and the large-scale
// star/mesh/tree/linear families) exposes one Config type. Zero-valued
// fields always mean "use the documented default" and are valid; Validate
// rejects everything else that cannot be built, loudly, instead of the old
// normalize() behaviour of silently clamping bad values.
type Config interface {
	// Validate reports the first problem with the configuration, or nil.
	Validate() error
	// Generate builds the topology on the scheduler — a plain sim.Engine
	// or a sim.ShardedEngine. Call it only after a successful Validate
	// (the package-level Generate does both).
	Generate(e sim.Scheduler) (*Build, error)
}

// Key is one CLI-settable parameter of a generator, used by the -topo
// name,key=val,... syntax. Set parses val into the matching field of cfg.
type Key struct {
	Name  string
	Usage string
	Set   func(cfg Config, val string) error
}

// Generator is one named topology family in the registry.
type Generator struct {
	// Name is the registry key ("a", "b", "tiered", "star", ...).
	Name string
	// Title is a one-line description for help output.
	Title string
	// New returns a zero config of the family's Config type.
	New func() Config
	// Keys lists the parameters settable through a spec string.
	Keys []Key
}

// registry holds every registered generator by name.
var registry = map[string]Generator{}

// Register adds a generator to the registry. It panics on an empty or
// duplicate name or a nil constructor — registration happens in init and a
// bad entry is a programming error.
func Register(g Generator) {
	if g.Name == "" || g.New == nil {
		panic("topology: Register needs a name and a New constructor")
	}
	if _, dup := registry[g.Name]; dup {
		panic(fmt.Sprintf("topology: generator %q registered twice", g.Name))
	}
	registry[g.Name] = g
}

// Get looks up a registered generator by name.
func Get(name string) (Generator, bool) {
	g, ok := registry[name]
	return g, ok
}

// Names returns the registered generator names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Generators returns every registered generator, sorted by name.
func Generators() []Generator {
	names := Names()
	out := make([]Generator, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}

// Parse resolves a spec string of the form "name" or "name,key=val,..."
// against the registry, returning the generator and a validated config.
// List-valued keys separate elements with ':' (e.g. "fanout=2:3").
func Parse(spec string) (Generator, Config, error) {
	parts := strings.Split(spec, ",")
	name := strings.TrimSpace(parts[0])
	gen, ok := Get(name)
	if !ok {
		return Generator{}, nil, fmt.Errorf("topology: unknown generator %q (have %s)", name, strings.Join(Names(), ", "))
	}
	cfg := gen.New()
	for _, part := range parts[1:] {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Generator{}, nil, fmt.Errorf("topology: %s: %q is not key=val", name, part)
		}
		key, ok := gen.key(strings.TrimSpace(kv[0]))
		if !ok {
			return Generator{}, nil, fmt.Errorf("topology: %s has no key %q (have %s)", name, kv[0], gen.keyNames())
		}
		if err := key.Set(cfg, strings.TrimSpace(kv[1])); err != nil {
			return Generator{}, nil, fmt.Errorf("topology: %s,%s: %w", name, part, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Generator{}, nil, err
	}
	return gen, cfg, nil
}

func (g Generator) key(name string) (Key, bool) {
	for _, k := range g.Keys {
		if k.Name == name {
			return k, true
		}
	}
	return Key{}, false
}

func (g Generator) keyNames() string {
	names := make([]string, len(g.Keys))
	for i, k := range g.Keys {
		names[i] = k.Name
	}
	return strings.Join(names, ", ")
}

// Generate validates cfg and builds the topology on e.
func Generate(e sim.Scheduler, cfg Config) (*Build, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg.Generate(e)
}

// MustGenerate is Generate panicking on error — the Must* convention the
// Scenario builder uses. The deprecated Build* wrappers funnel through it,
// so a config the old normalize() would have silently clamped now fails
// loudly.
func MustGenerate(e sim.Scheduler, cfg Config) *Build {
	b, err := Generate(e, cfg)
	if err != nil {
		panic("topology: " + err.Error())
	}
	return b
}

// Usage renders every registered generator with its keys — the CLI's
// `-topo list` output, built from the registry itself.
func Usage() string {
	var b strings.Builder
	for _, g := range Generators() {
		fmt.Fprintf(&b, "%-8s %s\n", g.Name, g.Title)
		for _, k := range g.Keys {
			fmt.Fprintf(&b, "  %-14s %s\n", k.Name, k.Usage)
		}
	}
	return b.String()
}

// key builds a Key whose setter only accepts the generator's own Config
// type; a mismatch means the registry entry was assembled wrong.
func key[C Config](name, usage string, set func(c C, val string) error) Key {
	return Key{Name: name, Usage: usage, Set: func(cfg Config, val string) error {
		c, ok := cfg.(C)
		if !ok {
			return fmt.Errorf("key %s: config is %T, want %T", name, cfg, *new(C))
		}
		return set(c, val)
	}}
}

// The spec-string field parsers. Bandwidths accept scientific notation
// ("600e3"); durations are decimal seconds; lists are ':'-separated.

func parseInt(dst *int, val string) error {
	v, err := strconv.Atoi(val)
	if err != nil {
		return fmt.Errorf("want an integer, got %q", val)
	}
	*dst = v
	return nil
}

func parseInt64(dst *int64, val string) error {
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("want an integer, got %q", val)
	}
	*dst = v
	return nil
}

func parseFloat(dst *float64, val string) error {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("want a number, got %q", val)
	}
	*dst = v
	return nil
}

func parseSeconds(dst *sim.Time, val string) error {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("want seconds as a number, got %q", val)
	}
	*dst = sim.FromSeconds(v)
	return nil
}

func parseInts(dst *[]int, val string) error {
	var out []int
	for _, part := range strings.Split(val, ":") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("want ':'-separated integers, got %q", val)
		}
		out = append(out, v)
	}
	*dst = out
	return nil
}

func parseFloats(dst *[]float64, val string) error {
	var out []float64
	for _, part := range strings.Split(val, ":") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("want ':'-separated numbers, got %q", val)
		}
		out = append(out, v)
	}
	*dst = out
	return nil
}
