package topology

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

func TestBuildADefaults(t *testing.T) {
	e := sim.NewEngine(1)
	b := BuildA(e, AConfig{ReceiversPerSet: 3})
	if len(b.Sources) != 1 || b.Controller != b.Sources[0] {
		t.Fatal("source/controller wiring wrong")
	}
	if got := len(b.Receivers[0]); got != 6 {
		t.Fatalf("receivers = %d, want 6", got)
	}
	// Set 1 (100 Kbps) optimal 2 layers; set 2 (500 Kbps) optimal 4.
	for i := 0; i < 3; i++ {
		if b.Optimal[0][i] != 2 {
			t.Errorf("set1 optimal[%d] = %d, want 2", i, b.Optimal[0][i])
		}
		if b.Optimal[0][3+i] != 4 {
			t.Errorf("set2 optimal[%d] = %d, want 4", i, b.Optimal[0][3+i])
		}
	}
	if len(b.Bottlenecks) != 2 {
		t.Errorf("bottlenecks = %d, want 2", len(b.Bottlenecks))
	}
	// Path latency src -> receiver = 3 hops x 200ms = 600ms, the paper's
	// quoted maximum.
	for _, rx := range b.AllReceivers() {
		if d := b.Net.PathDelay(b.Sources[0].ID, rx.ID); d != 600*sim.Millisecond {
			t.Errorf("path delay to %v = %v, want 600ms", rx, d)
		}
	}
}

func TestBuildACustomBandwidths(t *testing.T) {
	e := sim.NewEngine(1)
	b := BuildA(e, AConfig{ReceiversPerSet: 1, Set1Bandwidth: 32e3, Set2Bandwidth: 2100e3})
	if b.Optimal[0][0] != 1 {
		t.Errorf("32 Kbps optimal = %d, want 1", b.Optimal[0][0])
	}
	if b.Optimal[0][1] != 6 {
		t.Errorf("2.1 Mbps optimal = %d, want 6", b.Optimal[0][1])
	}
}

func TestBuildB(t *testing.T) {
	e := sim.NewEngine(1)
	b := BuildB(e, BConfig{Sessions: 4})
	if len(b.Sources) != 4 || len(b.Receivers) != 4 {
		t.Fatalf("sessions = %d/%d", len(b.Sources), len(b.Receivers))
	}
	for s := 0; s < 4; s++ {
		if len(b.Receivers[s]) != 1 {
			t.Fatalf("session %d receivers = %d", s, len(b.Receivers[s]))
		}
		if b.Optimal[s][0] != 4 {
			t.Errorf("session %d optimal = %d, want 4", s, b.Optimal[s][0])
		}
		if d := b.Net.PathDelay(b.Sources[s].ID, b.Receivers[s][0].ID); d != 600*sim.Millisecond {
			t.Errorf("session %d path delay = %v", s, d)
		}
	}
	// Shared link capacity = 4 x 500 Kbps.
	if got := b.Bottlenecks[0].Bandwidth; got != 2e6 {
		t.Errorf("shared capacity = %g, want 2e6", got)
	}
	if len(b.AllReceivers()) != 4 {
		t.Errorf("AllReceivers = %d", len(b.AllReceivers()))
	}
}

func TestBuildBSharedQueueScales(t *testing.T) {
	e := sim.NewEngine(1)
	b := BuildB(e, BConfig{Sessions: 8})
	if got := b.Bottlenecks[0].QueueLimit; got != 8*DefaultQueueLimit {
		t.Errorf("shared queue = %d, want %d", got, 8*DefaultQueueLimit)
	}
}

func TestBuildTiered(t *testing.T) {
	e := sim.NewEngine(1)
	b := BuildTiered(e, TieredConfig{
		Seed:             7,
		FanOut:           []int{2, 3},
		Bandwidth:        []float64{10e6, 400e3},
		ReceiversPerLeaf: 2,
	})
	if got := len(b.Receivers[0]); got != 2*3*2 {
		t.Fatalf("receivers = %d, want 12", got)
	}
	for i, opt := range b.Optimal[0] {
		if opt < 1 || opt > 6 {
			t.Errorf("optimal[%d] = %d out of range", i, opt)
		}
	}
	// The 400 Kbps ±25% tier caps everyone at 3 or 4 layers.
	for i, opt := range b.Optimal[0] {
		if opt > 4 {
			t.Errorf("optimal[%d] = %d, want <= 4 given the 400k tier", i, opt)
		}
	}
	if len(b.Bottlenecks) == 0 {
		t.Error("no bottleneck links recorded")
	}
}

func TestBuildTieredDeterministic(t *testing.T) {
	build := func() []int {
		e := sim.NewEngine(1)
		b := BuildTiered(e, TieredConfig{Seed: 42, FanOut: []int{2, 2}, Bandwidth: []float64{5e6, 300e3}, ReceiversPerLeaf: 1})
		return b.Optimal[0]
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different topologies: %v vs %v", a, b)
		}
	}
}

func TestBuildTieredValidation(t *testing.T) {
	e := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched config")
		}
	}()
	BuildTiered(e, TieredConfig{FanOut: []int{2}, Bandwidth: nil})
}

func TestBuildsAreRoutable(t *testing.T) {
	// Every registered generator, at its defaults, must yield a build that
	// is fully connected and routable both ways between each session's
	// source and its receivers, with sane session wiring and recorded
	// bottlenecks.
	for _, gen := range Generators() {
		t.Run(gen.Name, func(t *testing.T) {
			e := sim.NewEngine(1)
			b := MustGenerate(e, gen.New())
			if len(b.Sources) == 0 || b.Controller == nil {
				t.Fatal("no sources or controller")
			}
			if len(b.Receivers) != len(b.Sources) || len(b.Optimal) != len(b.Sources) {
				t.Fatalf("sessions mismatched: %d sources, %d receiver sets, %d optima sets",
					len(b.Sources), len(b.Receivers), len(b.Optimal))
			}
			if len(b.AllReceivers()) == 0 {
				t.Fatal("no receivers")
			}
			if len(b.Bottlenecks) == 0 {
				t.Error("no bottleneck links recorded")
			}
			for s, src := range b.Sources {
				if len(b.Receivers[s]) != len(b.Optimal[s]) {
					t.Fatalf("session %d: %d receivers vs %d optima", s, len(b.Receivers[s]), len(b.Optimal[s]))
				}
				for i, rx := range b.Receivers[s] {
					if b.Net.NextHop(rx.ID, src.ID) == netsim.NoNode {
						t.Errorf("no route rx %v -> src %v", rx, src)
					}
					if b.Net.NextHop(src.ID, rx.ID) == netsim.NoNode {
						t.Errorf("no route src %v -> rx %v", src, rx)
					}
					if opt := b.Optimal[s][i]; opt < 1 {
						t.Errorf("optimal[%d][%d] = %d, want >= 1", s, i, opt)
					}
				}
			}
			// Full connectivity: the controller reaches every node.
			for _, node := range b.Net.Nodes() {
				if node != b.Controller && b.Net.NextHop(b.Controller.ID, node.ID) == netsim.NoNode {
					t.Errorf("controller cannot reach %v", node)
				}
			}
		})
	}
}

// TestBuildsDeterministic builds every registered generator twice at its
// defaults and demands identical node naming/ordering and optima — the
// property seeded experiments rely on.
func TestBuildsDeterministic(t *testing.T) {
	for _, gen := range Generators() {
		t.Run(gen.Name, func(t *testing.T) {
			snapshot := func() ([]string, []int) {
				b := MustGenerate(sim.NewEngine(1), gen.New())
				var names []string
				for _, n := range b.Net.Nodes() {
					names = append(names, n.Name)
				}
				var opts []int
				for _, o := range b.Optimal {
					opts = append(opts, o...)
				}
				return names, opts
			}
			names1, opts1 := snapshot()
			names2, opts2 := snapshot()
			if len(names1) != len(names2) {
				t.Fatalf("node counts differ: %d vs %d", len(names1), len(names2))
			}
			for i := range names1 {
				if names1[i] != names2[i] {
					t.Fatalf("node %d named %q then %q", i, names1[i], names2[i])
				}
			}
			for i := range opts1 {
				if opts1[i] != opts2[i] {
					t.Fatalf("optimal %d = %d then %d", i, opts1[i], opts2[i])
				}
			}
		})
	}
}

func TestParseSpecs(t *testing.T) {
	// A valid spec with keys round-trips into a validated config.
	gen, cfg, err := Parse("tree,depth=2,branch=3,rxleaf=4")
	if err != nil {
		t.Fatal(err)
	}
	if gen.Name != "tree" {
		t.Errorf("generator = %q, want tree", gen.Name)
	}
	tc, ok := cfg.(*TreeConfig)
	if !ok || tc.Depth != 2 || tc.Branch != 3 || tc.ReceiversPerLeaf != 4 {
		t.Errorf("parsed config = %+v", cfg)
	}
	for _, bad := range []string{
		"nosuch",           // unknown generator
		"tree,depth",       // not key=val
		"tree,nosuchkey=1", // unknown key
		"tree,depth=x",     // unparseable value
		"star,jitter=2",    // fails Validate
		"mesh,routers=2",   // fails Validate (ring needs 3)
		"tiered,fanout=2",  // fails Validate (bandwidth mismatch)
	} {
		if _, _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	e := sim.NewEngine(1)
	for name, cfg := range map[string]Config{
		"a-negative-rx":     &AConfig{ReceiversPerSet: -1},
		"a-bad-layers":      &AConfig{Layers: 99},
		"b-negative-rate":   &BConfig{PerSession: -1},
		"star-bad-jitter":   &StarConfig{Jitter: 1.5},
		"mesh-tiny-ring":    &MeshConfig{Routers: 2},
		"tree-negative":     &TreeConfig{Depth: -1},
		"linear-negative":   &LinearConfig{Chains: -1},
		"tiered-mismatched": &TieredConfig{FanOut: []int{2}, Bandwidth: nil},
	} {
		if _, err := Generate(e, cfg); err == nil {
			t.Errorf("%s: Generate succeeded, want validation error", name)
		}
	}
}
