package topology

import (
	"toposense/internal/netsim"
)

// FallbackDomains computes partition labels for a Build whose generator
// emitted none (Topology A/B, mesh) — a cheap min-cut-style heuristic
// rather than the family's structural knowledge. The cut is made at the
// traffic core: source and controller nodes take label 0, and every
// connected component of the remaining graph becomes its own label. For
// the paper's topologies the core is exactly where all sessions converge,
// so removing it separates the receiver regions; for a cyclic mesh the
// rest usually stays one component and the partition degenerates to two
// labels, which is still a valid (if shallow) cut.
//
// The labels are only returned when every boundary link has positive
// propagation delay — the conservative engine's lookahead requirement.
// Otherwise, or when the network is too small to cut, FallbackDomains
// returns nil and a sharded engine runs the build on a single partition.
func (b *Build) FallbackDomains() []int {
	if b.Net == nil {
		return nil
	}
	n := b.Net.NumNodes()
	if n < 3 {
		return nil
	}
	core := make([]bool, n)
	if b.Controller != nil {
		core[b.Controller.ID] = true
	}
	for _, s := range b.Sources {
		core[s.ID] = true
	}

	doms := make([]int, n)
	seen := make([]bool, n)
	next := 1
	for start := 0; start < n; start++ {
		if core[start] || seen[start] {
			continue
		}
		queue := []netsim.NodeID{netsim.NodeID(start)}
		seen[start] = true
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			doms[id] = next
			for _, l := range b.Net.Node(id).Links() {
				to := l.To
				if core[to] || seen[to] {
					continue
				}
				seen[to] = true
				queue = append(queue, to)
			}
		}
		next++
	}
	if next == 1 {
		return nil // nothing outside the core
	}
	// The cut is only usable if every boundary link carries delay.
	for id := 0; id < n; id++ {
		for _, l := range b.Net.Node(netsim.NodeID(id)).Links() {
			if doms[l.From] != doms[l.To] && l.Delay <= 0 {
				return nil
			}
		}
	}
	return doms
}
