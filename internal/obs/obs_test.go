package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	if c.Name() != "x" {
		t.Errorf("Name = %q", c.Name())
	}
	if again := r.Counter("x"); again != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 || c.Name() != "" {
		t.Error("nil counter not inert")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Name() != "" {
		t.Error("nil histogram not inert")
	}
	var rec *Recorder
	rec.Record(Event{})
	if rec.Total() != 0 || rec.Cap() != 0 || rec.Events() != nil {
		t.Error("nil recorder not inert")
	}
	if err := rec.WriteLog(&bytes.Buffer{}); err != nil {
		t.Errorf("nil recorder WriteLog: %v", err)
	}
	var a *Audit
	a.Add(AuditPass{})
	if a.Total() != 0 || a.Passes() != nil {
		t.Error("nil audit not inert")
	}
	var o *Obs
	o.ObserveEngine(sim.NewEngine(1))
	if o.Dump() != nil {
		t.Error("nil Obs Dump should be nil")
	}
	var reg *Registry
	if reg.Counter("x") != nil || reg.Histogram("y", nil) != nil {
		t.Error("nil registry should hand out nil instruments")
	}
	if reg.Counters() != nil || reg.Histograms() != nil {
		t.Error("nil registry enumerations should be nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d", h.Count())
	}
	want := []int64{2, 1, 1, 2} // <=1, <=10, <=100, overflow
	for i, w := range want {
		if h.counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
	if h.min != 0.5 || h.max != 5000 {
		t.Errorf("min/max = %g/%g", h.min, h.max)
	}
	if got, w := h.Mean(), h.Sum()/6; got != w {
		t.Errorf("Mean = %g, want %g", got, w)
	}
}

func TestRegistryCrossTypePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a")
	r.Histogram("b", []float64{1})
	for _, f := range []func(){
		func() { r.Histogram("a", []float64{1}) },
		func() { r.Counter("b") },
		func() { r.Histogram("c", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRegistrySortedEnumeration(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta")
	r.Counter("alpha")
	r.Histogram("mid", []float64{1})
	cs := r.Counters()
	if len(cs) != 2 || cs[0].Name() != "alpha" || cs[1].Name() != "zeta" {
		t.Errorf("counters not sorted: %v, %v", cs[0].Name(), cs[1].Name())
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Seq: int64(i)})
	}
	if r.Total() != 5 || r.Cap() != 3 {
		t.Fatalf("total/cap = %d/%d", r.Total(), r.Cap())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, want := range []int64{2, 3, 4} {
		if evs[i].Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, evs[i].Seq, want)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 events retained of 5 recorded") {
		t.Errorf("log header missing: %q", buf.String())
	}
}

func TestAuditRingAndNumbering(t *testing.T) {
	a := NewAudit(2)
	for i := 0; i < 3; i++ {
		a.Add(AuditPass{At: sim.Time(i) * sim.Second, Receivers: []AuditEntry{{Node: i}}})
	}
	if a.Total() != 3 {
		t.Fatalf("Total = %d", a.Total())
	}
	ps := a.Passes()
	if len(ps) != 2 || ps[0].Pass != 2 || ps[1].Pass != 3 {
		t.Fatalf("passes = %+v", ps)
	}
	if ps[1].AtSeconds != 2 {
		t.Errorf("AtSeconds = %g", ps[1].AtSeconds)
	}
	var buf bytes.Buffer
	if err := a.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pass 3 at 2.000s") {
		t.Errorf("log missing pass line: %q", buf.String())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EvEnqueue: "enqueue", EvDrop: "drop", EvDeliver: "deliver",
		EvGraft: "graft", EvPrune: "prune", EvRepair: "repair", EvPass: "pass",
		EventKind(99): "kind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestDumpJSONAndCSV(t *testing.T) {
	e := sim.NewEngine(7)
	o := New(Options{FlightRecorder: 8, AuditPasses: 4})
	o.ObserveEngine(e)
	o.Grafts.Add(3)
	o.QueueDepth.Observe(2)
	o.QueueDepth.Observe(100)
	o.Rec.Record(Event{At: sim.Second, Kind: EvGraft, From: 1, To: 2, Session: 0, Seq: 5})
	o.Audit.Add(AuditPass{At: 2 * sim.Second, Topologies: 1,
		Receivers: []AuditEntry{{Node: 4, Session: 0, Level: 2, Loss: 0.25, Parent: 1, OnTree: true, Prescribed: 3}}})

	d := o.Dump()
	var js bytes.Buffer
	if err := d.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	// Round-trips as valid JSON (including the "+Inf" bucket bound).
	var back map[string]any
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, want := range []string{`"mcast_grafts"`, `"+Inf"`, `"kind": "graft"`, `"prescribed": 3`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}

	var cs bytes.Buffer
	if err := d.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cs.String(), "counter,mcast_grafts,3") {
		t.Errorf("CSV missing counter row:\n%s", cs.String())
	}
	if !strings.Contains(cs.String(), "bucket,link_queue_depth,+Inf,2") {
		t.Errorf("CSV missing overflow bucket row:\n%s", cs.String())
	}
}

// TestBucketDumpRoundTrip: a marshalled dump must unmarshal back into the
// same typed buckets, "+Inf" bound included — consumers of -obs exports
// parse with the same types.
func TestBucketDumpRoundTrip(t *testing.T) {
	in := []BucketDump{{LE: 4, Count: 2}, {LE: math.Inf(1), Count: 7}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []BucketDump
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if len(out) != 2 || out[0] != in[0] || !math.IsInf(out[1].LE, 1) || out[1].Count != 7 {
		t.Errorf("round-trip mismatch: %v -> %v", in, out)
	}
}

func TestDumpCumulativeBuckets(t *testing.T) {
	o := New(Options{FlightRecorder: -1, AuditPasses: -1})
	for _, v := range []float64{0, 1, 3, 9, 1e9} {
		o.QueueDepth.Observe(v)
	}
	d := o.Dump()
	var qd *HistogramDump
	for i := range d.Histograms {
		if d.Histograms[i].Name == "link_queue_depth" {
			qd = &d.Histograms[i]
		}
	}
	if qd == nil {
		t.Fatal("link_queue_depth not exported")
	}
	last := qd.Buckets[len(qd.Buckets)-1]
	if last.Count != qd.Count {
		t.Errorf("overflow cumulative count %d != total %d", last.Count, qd.Count)
	}
	for i := 1; i < len(qd.Buckets); i++ {
		if qd.Buckets[i].Count < qd.Buckets[i-1].Count {
			t.Errorf("bucket counts not cumulative at %d", i)
		}
	}
	if d.Flight != nil || d.Audit != nil {
		t.Error("disabled recorders leaked into the dump")
	}
}

// netProbeRig runs a tiny congested line network with a NetProbe attached.
func netProbeRig(t *testing.T) (*sim.Engine, *Obs, *netsim.Link) {
	t.Helper()
	e := sim.NewEngine(1)
	n := netsim.New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	// 1000B at 8e5 bps = 10ms serialization; queue limit 2.
	n.Connect(a, b, netsim.LinkConfig{Bandwidth: 8e5, Delay: 5 * sim.Millisecond, QueueLimit: 2})

	o := New(Options{FlightRecorder: 64, AuditPasses: -1})
	n.AttachProbe(NewNetProbe(o))
	o.ObserveEngine(e)

	for i := 0; i < 5; i++ {
		a.SendUnicast(&netsim.Packet{Kind: netsim.Control, Src: a.ID, Dst: b.ID,
			Group: netsim.NoGroup, Size: 1000, Seq: int64(i)})
	}
	e.Run()
	return e, o, a.LinkTo(b.ID)
}

func TestNetProbeCountsMatchLinkStats(t *testing.T) {
	_, o, link := netProbeRig(t)
	st := link.Stats()
	if got := o.Enqueues.Value(); got != int64(st.Enqueued) {
		t.Errorf("Enqueues = %d, link says %d", got, st.Enqueued)
	}
	if got := o.Delivers.Value(); got != int64(st.Delivered) {
		t.Errorf("Delivers = %d, link says %d", got, st.Delivered)
	}
	if got := o.DropsQueue.Value(); got != int64(st.Dropped) {
		t.Errorf("DropsQueue = %d, link says %d", got, st.Dropped)
	}
	if o.DropsDown.Value() != 0 {
		t.Errorf("DropsDown = %d on a healthy link", o.DropsDown.Value())
	}
	// All five were control packets.
	if got := o.DropsControl.Value(); got != o.DropsQueue.Value() {
		t.Errorf("DropsControl = %d, want %d", got, o.DropsQueue.Value())
	}
}

func TestNetProbeLatency(t *testing.T) {
	_, o, _ := netProbeRig(t)
	// First packet: 10ms serialization + 5ms propagation = 15ms, no queuing.
	// Later packets queue behind it, so latencies are 15, 25, 35 ms.
	if got := o.LinkLatency.Count(); got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
	if got := o.LinkLatency.Sum(); got != 15+25+35 {
		t.Errorf("latency sum = %g ms, want 75", got)
	}
	// Every deliver event carries its latency in Aux (microseconds).
	var delivers []Event
	for _, ev := range o.Rec.Events() {
		if ev.Kind == EvDeliver {
			delivers = append(delivers, ev)
		}
	}
	if len(delivers) != 3 {
		t.Fatalf("deliver events = %d", len(delivers))
	}
	if delivers[0].Aux != int64(15*sim.Millisecond) {
		t.Errorf("first deliver Aux = %dµs, want %d", delivers[0].Aux, int64(15*sim.Millisecond))
	}
}

func TestNetProbeLinkDownCause(t *testing.T) {
	e := sim.NewEngine(1)
	n := netsim.New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l, _ := n.Connect(a, b, netsim.LinkConfig{Bandwidth: 8e5, Delay: 0})
	o := New(Options{FlightRecorder: 8, AuditPasses: -1})
	n.AttachProbe(NewNetProbe(o))
	l.SetDown()
	// Offer the packet straight to the failed link, as cached multicast
	// forwarding state would (routing no longer points at it).
	l.Send(&netsim.Packet{Kind: netsim.Data, Src: a.ID, Dst: b.ID,
		Group: netsim.NoGroup, Size: 100})
	e.Run()
	if o.DropsDown.Value() != 1 || o.DropsQueue.Value() != 0 {
		t.Errorf("down/queue drops = %d/%d, want 1/0", o.DropsDown.Value(), o.DropsQueue.Value())
	}
	if o.DropsData.Value() != 1 {
		t.Errorf("DropsData = %d, want 1", o.DropsData.Value())
	}
	evs := o.Rec.Events()
	if len(evs) != 1 || evs[0].Kind != EvDrop || evs[0].Aux != DropLinkDown {
		t.Errorf("drop event = %+v", evs)
	}
}

func TestZeroAllocHotPath(t *testing.T) {
	o := New(Options{FlightRecorder: 16, AuditPasses: -1})
	c := o.Grafts
	h := o.QueueDepth
	rec := o.Rec
	ev := Event{Kind: EvGraft, From: 1, To: 2}

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %g/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %g/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { rec.Record(ev) }); n != 0 {
		t.Errorf("Recorder.Record allocates %g/op", n)
	}

	var nc *Counter
	var nh *Histogram
	var nr *Recorder
	if n := testing.AllocsPerRun(1000, func() { nc.Inc(); nh.Observe(1); nr.Record(ev) }); n != 0 {
		t.Errorf("nil instrument path allocates %g/op", n)
	}
}
