package obs

import (
	"fmt"
	"io"
	"sync"

	"toposense/internal/sim"
)

// EventKind labels one flight-recorder entry.
type EventKind uint8

// Flight-recorder event kinds. Packet events come from the network probe,
// tree events from the multicast domain, pass events from the controller.
const (
	// EvEnqueue: a link accepted a packet (From/To = link endpoints,
	// Aux = queue depth the arrival saw).
	EvEnqueue EventKind = iota
	// EvDrop: a packet was discarded (Aux = DropQueue or DropLinkDown).
	EvDrop
	// EvDeliver: a packet reached the far end of a link (Aux = the
	// link-level latency in microseconds when known, else -1).
	EvDeliver
	// EvGraft: a router grafted toward its parent (From = router,
	// To = parent).
	EvGraft
	// EvPrune: a router pruned itself from its parent (From = router,
	// To = parent).
	EvPrune
	// EvRepair: a route change re-homed (or orphaned) a router
	// (From = router, To = new parent or -1).
	EvRepair
	// EvPass: the controller ran one decision pass (Aux = suggestions
	// sent, Seq = pass number).
	EvPass
)

// Drop causes carried in EvDrop's Aux field.
const (
	// DropQueue is a drop-policy discard: queue overflow under drop-tail,
	// or the highest-layer victim under priority dropping.
	DropQueue int64 = iota
	// DropLinkDown is a loss to a failed link: rejected on arrival or
	// discarded from the queue/pipeline by SetDown.
	DropLinkDown
)

func (k EventKind) String() string {
	switch k {
	case EvEnqueue:
		return "enqueue"
	case EvDrop:
		return "drop"
	case EvDeliver:
		return "deliver"
	case EvGraft:
		return "graft"
	case EvPrune:
		return "prune"
	case EvRepair:
		return "repair"
	case EvPass:
		return "pass"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one fixed-size flight-recorder entry. Fields are generic so one
// struct covers packet, tree and controller events; which fields mean what
// is documented per EventKind. The struct is a plain value — recording is
// a copy into the ring, never an allocation.
type Event struct {
	At      sim.Time
	Kind    EventKind
	From    int32 // link source / router node; -1 when not applicable
	To      int32 // link destination / parent node; -1 when not applicable
	Session int32 // media session; -1 for non-media
	Layer   int32 // media layer; 0 for non-media
	Seq     int64 // packet sequence number / controller pass number
	Aux     int64 // kind-specific (queue depth, drop cause, latency µs, ...)
}

// Recorder is a fixed-capacity ring buffer of the most recent events — a
// flight recorder: always on once enabled, never growing, dumpable after
// the fact to reconstruct what led up to an anomaly. Record on a nil
// Recorder is a no-op, so call sites need no guard. A mutex serializes the
// ring: shards of a parallel engine record concurrently, so the retained
// interleaving (not the per-link event streams) is scheduling-dependent
// there — disable the recorder when comparing exports across shard counts.
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRecorder returns a recorder keeping the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic("obs: recorder capacity must be positive")
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// Record appends ev, evicting the oldest entry once the ring is full.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
	}
	r.next++
	if r.next == cap(r.buf) {
		r.next = 0
	}
	r.total++
}

// Total returns how many events were ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Events returns the retained events oldest-first, as a copy.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// WriteLog renders the retained events oldest-first, one per line, in a
// stable human-readable format. Used by the -flightrec flag and the
// panic-dump path.
func (r *Recorder) WriteLog(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "flight recorder: %d events retained of %d recorded\n", len(r.buf), r.total); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%12.6f %-8s from=%d to=%d s=%d l=%d seq=%d aux=%d\n",
			ev.At.Seconds(), ev.Kind, ev.From, ev.To, ev.Session, ev.Layer, ev.Seq, ev.Aux); err != nil {
			return err
		}
	}
	return nil
}
