package obs

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// The obs-gate benchmarks back the zero-overhead contract: every benchmark
// here must report 0 allocs/op (make obs-gate / scripts/benchdiff.sh
// obs-gate enforce it in CI). "Disabled" benchmarks exercise the exact code
// an uninstrumented component runs — a nil instrument or no probe attached.

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 63))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Histogram("bench", []float64{1, 2, 4, 8, 16, 32, 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 63))
	}
}

func BenchmarkRecorderRecordDisabled(b *testing.B) {
	var r *Recorder
	ev := Event{Kind: EvEnqueue, From: 1, To: 2, Seq: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(ev)
	}
}

func BenchmarkRecorderRecordEnabled(b *testing.B) {
	r := NewRecorder(DefaultFlightRecorder)
	ev := Event{Kind: EvEnqueue, From: 1, To: 2, Seq: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Seq = int64(i)
		r.Record(ev)
	}
}

// benchForward drives a paced pooled-packet flow over one link — the same
// shape as netsim's BenchmarkChainForwardPooled — optionally with a
// NetProbe attached. The unprobed run shows the disabled path is untouched
// (probes are the only hook, so no probe = the pre-obs hot path); the
// probed run bounds the enabled per-packet cost.
func benchForward(b *testing.B, probed bool) {
	e := sim.NewEngine(1)
	n := netsim.New(e)
	src := n.AddNode("src")
	dst := n.AddNode("dst")
	n.Connect(src, dst, netsim.LinkConfig{Bandwidth: 1e9, Delay: sim.Millisecond, QueueLimit: 64})
	if probed {
		o := New(Options{})
		n.AttachProbe(NewNetProbe(o))
	}
	inject := func(count int) {
		const gap = 8 * sim.Microsecond // one serialization slot: 1000 B at 1 Gbps
		sent := 0
		var fire func()
		fire = func() {
			p := n.NewPacket()
			p.Kind = netsim.Data
			p.Src, p.Dst = src.ID, dst.ID
			p.Group = netsim.NoGroup
			p.Size = 1000
			p.Seq = int64(sent)
			src.SendUnicast(p)
			p.Release()
			sent++
			if sent < count {
				e.Schedule(gap, fire)
			}
		}
		e.Schedule(0, fire)
		e.Run()
	}
	inject(1024) // fill the packet pool and the probe's pending map
	b.ReportAllocs()
	b.ResetTimer()
	inject(b.N)
}

func BenchmarkLinkForwardNoProbe(b *testing.B) { benchForward(b, false) }
func BenchmarkLinkForwardProbed(b *testing.B)  { benchForward(b, true) }
