package obs

import (
	"toposense/internal/sim"
)

// Default capacities for the bounded recorders.
const (
	DefaultFlightRecorder = 4096
	DefaultAuditPasses    = 256
)

// Options sizes an Obs instance. The zero value takes the defaults.
type Options struct {
	// FlightRecorder is the event ring capacity (0 = DefaultFlightRecorder,
	// < 0 disables the recorder entirely).
	FlightRecorder int
	// AuditPasses is how many controller passes the audit log retains
	// (0 = DefaultAuditPasses, < 0 disables the audit log).
	AuditPasses int
}

// Obs bundles one simulation's observability state: the instrument
// registry, the flight recorder, the audit log, and the pre-registered
// instruments the core pipeline updates. Components hold the typed
// pointers directly — no registry lookup ever happens on a hot path — and
// every instrument is nil-safe, so a component wired with a nil *Obs pays
// exactly one pointer comparison.
type Obs struct {
	Reg   *Registry
	Rec   *Recorder
	Audit *Audit

	// Multicast tree maintenance (internal/mcast).
	Grafts  *Counter
	Prunes  *Counter
	Repairs *Counter

	// Controller passes (internal/controller). PassEvents observes the
	// engine-events distance between consecutive passes; FanIn the control
	// messages the controller consumed per pass — the fan-in the in-network
	// aggregation layer collapses from O(receivers) to O(branching).
	Passes     *Counter
	PassEvents *Histogram
	FanIn      *Histogram

	// In-network feedback aggregation (mcast.Aggregator).
	AggAbsorbed *Counter // loss reports absorbed at tree nodes
	AggMerges   *Counter // child aggregates merged on the way up
	AggFlushes  *Counter // aggregate packets emitted toward the controller
	AggBatches  *Counter // suggestion sub-batches forwarded down the tree

	// Membership churn (internal/churn driver + the departure lifecycle).
	// DeparturePrune observes the departure-to-prune latency in
	// milliseconds: the last member leaving a last-hop router to the prune
	// landing at its parent (leave latency + one link delay, typically).
	ChurnJoins     *Counter
	ChurnLeaves    *Counter
	DeparturePrune *Histogram

	// Hierarchical control plane (internal/federation). FedReconcileUs
	// observes each parent reconcile pass's host wall latency in
	// microseconds (reporting only — the simulation never reads it);
	// FedBudgetChurn counts per-(domain, session) budget changes the
	// reconcile loop pushed down, the stability number of the declarative
	// loop (churn -> 0 is budget convergence).
	FedExports     *Counter // domain summaries received from leaf controllers
	FedReconciles  *Counter // parent reconcile passes run
	FedBudgetChurn *Counter // budget changes pushed down to leaves
	FedCapped      *Counter // suggestions clamped to a budget at the leaves
	FedReconcileUs *Histogram
	FedBudgetLevel *Histogram // budget levels in force after each reconcile

	// Packet plane (via the NetProbe).
	Enqueues     *Counter
	Delivers     *Counter
	DropsQueue   *Counter // drop-policy discards (queue overflow / priority victim)
	DropsDown    *Counter // losses to failed links
	DropsData    *Counter // dropped media packets
	DropsControl *Counter // dropped control packets
	QueueDepth   *Histogram
	LinkLatency  *Histogram // per-link queuing+serialization+propagation, in milliseconds

	engines []EngineSource
}

// EngineSource is anything whose scheduler statistics a Dump can snapshot
// — both sim.Engine and sim.ShardedEngine satisfy it.
type EngineSource interface {
	Stats() sim.EngineStats
}

// New builds an Obs with every core instrument registered.
func New(opt Options) *Obs {
	o := &Obs{Reg: NewRegistry()}
	switch {
	case opt.FlightRecorder == 0:
		o.Rec = NewRecorder(DefaultFlightRecorder)
	case opt.FlightRecorder > 0:
		o.Rec = NewRecorder(opt.FlightRecorder)
	}
	switch {
	case opt.AuditPasses == 0:
		o.Audit = NewAudit(DefaultAuditPasses)
	case opt.AuditPasses > 0:
		o.Audit = NewAudit(opt.AuditPasses)
	}

	o.Grafts = o.Reg.Counter("mcast_grafts")
	o.Prunes = o.Reg.Counter("mcast_prunes")
	o.Repairs = o.Reg.Counter("mcast_repairs")

	o.Passes = o.Reg.Counter("controller_passes")
	o.PassEvents = o.Reg.Histogram("controller_pass_events",
		[]float64{100, 300, 1000, 3000, 10000, 30000, 100000, 300000})
	o.FanIn = o.Reg.Histogram("controller_fanin",
		[]float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000})

	o.AggAbsorbed = o.Reg.Counter("agg_reports_absorbed")
	o.AggMerges = o.Reg.Counter("agg_merges")
	o.AggFlushes = o.Reg.Counter("agg_flushes")
	o.AggBatches = o.Reg.Counter("agg_batches")

	o.ChurnJoins = o.Reg.Counter("churn_joins")
	o.ChurnLeaves = o.Reg.Counter("churn_leaves")
	o.DeparturePrune = o.Reg.Histogram("churn_departure_prune_ms",
		[]float64{100, 250, 500, 1000, 1500, 2000, 3000, 5000})

	o.FedExports = o.Reg.Counter("federation_exports")
	o.FedReconciles = o.Reg.Counter("federation_reconciles")
	o.FedBudgetChurn = o.Reg.Counter("federation_budget_churn")
	o.FedCapped = o.Reg.Counter("federation_capped_suggestions")
	o.FedReconcileUs = o.Reg.Histogram("federation_reconcile_us",
		[]float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000})
	o.FedBudgetLevel = o.Reg.Histogram("federation_budget_level",
		[]float64{1, 2, 3, 4, 5, 6, 8, 12, 15})

	o.Enqueues = o.Reg.Counter("link_enqueues")
	o.Delivers = o.Reg.Counter("link_delivers")
	o.DropsQueue = o.Reg.Counter("link_drops_queue")
	o.DropsDown = o.Reg.Counter("link_drops_down")
	o.DropsData = o.Reg.Counter("link_drops_data")
	o.DropsControl = o.Reg.Counter("link_drops_control")
	o.QueueDepth = o.Reg.Histogram("link_queue_depth",
		[]float64{0, 1, 2, 4, 8, 12, 16, 20, 32, 64})
	o.LinkLatency = o.Reg.Histogram("link_latency_ms",
		[]float64{1, 5, 10, 25, 50, 100, 200, 300, 500, 1000, 2000})
	return o
}

// ObserveEngine registers a simulation engine whose scheduler stats are
// snapshotted into every Dump.
func (o *Obs) ObserveEngine(e EngineSource) {
	if o == nil || e == nil {
		return
	}
	o.engines = append(o.engines, e)
}
