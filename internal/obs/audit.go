package obs

import (
	"fmt"
	"io"

	"toposense/internal/sim"
)

// AuditEntry records what the controller knew about one receiver during
// one decision pass, and what it prescribed. Together the entries of a
// pass explain every suggestion the controller sent: the reported loss it
// acted on, whether that report was fresh or a reused stale aggregate, and
// the topology evidence (the receiver's parent in the discovered tree)
// the algorithm weighed.
type AuditEntry struct {
	Node    int     `json:"node"`
	Session int     `json:"session"`
	Level   int     `json:"level"`
	Loss    float64 `json:"loss"`
	Bytes   int64   `json:"bytes"`
	// Stale marks a receiver that stayed silent the whole interval: the
	// controller reused its last known aggregate instead of fresh reports.
	Stale bool `json:"stale,omitempty"`
	// OnTree reports whether the receiver's node appeared in a validated
	// discovered topology this pass; Parent is its parent in that tree
	// (-1 when off-tree or no topology covered the session).
	OnTree bool `json:"on_tree"`
	Parent int  `json:"parent"`
	// Prescribed is the level the algorithm suggested this pass, or -1
	// when it issued no suggestion for this receiver.
	Prescribed int `json:"prescribed"`
}

// AuditPass is one controller decision interval.
type AuditPass struct {
	At sim.Time `json:"-"`
	// AtSeconds duplicates At for the JSON export (sim.Time marshals as a
	// bare integer of microseconds, which is hostile to read).
	AtSeconds float64 `json:"at_seconds"`
	// Pass numbers passes from 1 in execution order.
	Pass int64 `json:"pass"`
	// Topologies is how many validated topologies the pass consumed.
	Topologies int `json:"topologies"`
	// EventsSince is the number of engine events that fired since the
	// previous pass — the pass-to-pass distance measured in simulator
	// work, the unit wall clocks can't skew.
	EventsSince uint64       `json:"events_since"`
	Receivers   []AuditEntry `json:"receivers"`
}

// Audit is a bounded log of the most recent controller passes. Like the
// flight recorder it never grows past its capacity; unlike it, entries
// are whole passes. Add on a nil Audit is a no-op.
type Audit struct {
	passes []AuditPass
	next   int
	total  int64
}

// NewAudit returns an audit log keeping the last capacity passes.
func NewAudit(capacity int) *Audit {
	if capacity <= 0 {
		panic("obs: audit capacity must be positive")
	}
	return &Audit{passes: make([]AuditPass, 0, capacity)}
}

// Add appends one pass, evicting the oldest beyond capacity, and stamps
// its pass number.
func (a *Audit) Add(p AuditPass) {
	if a == nil {
		return
	}
	a.total++
	p.Pass = a.total
	p.AtSeconds = p.At.Seconds()
	if len(a.passes) < cap(a.passes) {
		a.passes = append(a.passes, p)
	} else {
		a.passes[a.next] = p
	}
	a.next++
	if a.next == cap(a.passes) {
		a.next = 0
	}
}

// Total returns how many passes were ever added.
func (a *Audit) Total() int64 {
	if a == nil {
		return 0
	}
	return a.total
}

// Passes returns the retained passes oldest-first, as a copy.
func (a *Audit) Passes() []AuditPass {
	if a == nil || len(a.passes) == 0 {
		return nil
	}
	out := make([]AuditPass, 0, len(a.passes))
	if len(a.passes) == cap(a.passes) {
		out = append(out, a.passes[a.next:]...)
		out = append(out, a.passes[:a.next]...)
	} else {
		out = append(out, a.passes...)
	}
	return out
}

// WriteLog renders the retained passes in a stable human-readable format.
func (a *Audit) WriteLog(w io.Writer) error {
	if a == nil {
		return nil
	}
	for _, p := range a.Passes() {
		if _, err := fmt.Fprintf(w, "pass %d at %.3fs: %d topologies, %d receivers, %d events since last\n",
			p.Pass, p.AtSeconds, p.Topologies, len(p.Receivers), p.EventsSince); err != nil {
			return err
		}
		for _, e := range p.Receivers {
			stale := ""
			if e.Stale {
				stale = " (stale)"
			}
			if _, err := fmt.Fprintf(w, "  s%d/n%d level=%d loss=%.3f parent=%d on_tree=%v prescribed=%d%s\n",
				e.Session, e.Node, e.Level, e.Loss, e.Parent, e.OnTree, e.Prescribed, stale); err != nil {
				return err
			}
		}
	}
	return nil
}
