package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"toposense/internal/sim"
)

// Dump is the serializable snapshot of an Obs instance: every counter and
// histogram (sorted by name), the retained flight-recorder events, the
// retained audit passes, and the observed engines' scheduler stats. For a
// fixed seed a Dump is byte-identical across runs — the export never
// includes wall-clock or iteration-order-dependent data.
type Dump struct {
	Counters   []CounterDump     `json:"counters"`
	Histograms []HistogramDump   `json:"histograms"`
	Engines    []sim.EngineStats `json:"engines,omitempty"`
	// FlightTotal is how many events the recorder ever saw; Flight holds
	// the retained tail.
	FlightTotal uint64      `json:"flight_total,omitempty"`
	Flight      []EventDump `json:"flight,omitempty"`
	// AuditTotal is how many passes the audit log ever saw; Audit holds
	// the retained tail.
	AuditTotal int64       `json:"audit_total,omitempty"`
	Audit      []AuditPass `json:"audit,omitempty"`
}

// CounterDump is one counter's exported value.
type CounterDump struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramDump is one histogram's exported state. Buckets are cumulative
// counts at each upper bound, Prometheus-style, with the overflow bucket
// under +Inf.
type HistogramDump struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Mean    float64      `json:"mean"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Buckets []BucketDump `json:"buckets"`
}

// BucketDump is one cumulative histogram bucket.
type BucketDump struct {
	LE    float64 `json:"le"` // +Inf for the overflow bucket; see MarshalJSON
	Count int64   `json:"count"`
}

// MarshalJSON renders the +Inf overflow bound as the string "+Inf", since
// JSON has no infinity literal.
func (b BucketDump) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON accepts both a numeric bound and the "+Inf" string, so an
// exported dump round-trips.
func (b *BucketDump) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if string(raw.LE) == `"+Inf"` {
		b.LE = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.LE, &b.LE)
}

// EventDump is one flight-recorder event with its kind rendered as text.
type EventDump struct {
	AtSeconds float64 `json:"at_seconds"`
	Kind      string  `json:"kind"`
	From      int32   `json:"from"`
	To        int32   `json:"to"`
	Session   int32   `json:"session"`
	Layer     int32   `json:"layer"`
	Seq       int64   `json:"seq"`
	Aux       int64   `json:"aux"`
}

// Dump snapshots the Obs into its serializable form. Nil-safe.
func (o *Obs) Dump() *Dump {
	if o == nil {
		return nil
	}
	d := &Dump{}
	for _, c := range o.Reg.Counters() {
		d.Counters = append(d.Counters, CounterDump{Name: c.Name(), Value: c.Value()})
	}
	for _, h := range o.Reg.Histograms() {
		hd := HistogramDump{
			Name:  h.Name(),
			Count: h.count,
			Sum:   h.sum,
			Mean:  h.Mean(),
			Min:   h.min,
			Max:   h.max,
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			hd.Buckets = append(hd.Buckets, BucketDump{LE: b, Count: cum})
		}
		cum += h.counts[len(h.bounds)]
		hd.Buckets = append(hd.Buckets, BucketDump{LE: math.Inf(1), Count: cum})
		d.Histograms = append(d.Histograms, hd)
	}
	for _, e := range o.engines {
		d.Engines = append(d.Engines, e.Stats())
	}
	if o.Rec != nil {
		d.FlightTotal = o.Rec.Total()
		for _, ev := range o.Rec.Events() {
			d.Flight = append(d.Flight, EventDump{
				AtSeconds: ev.At.Seconds(),
				Kind:      ev.Kind.String(),
				From:      ev.From, To: ev.To,
				Session: ev.Session, Layer: ev.Layer,
				Seq: ev.Seq, Aux: ev.Aux,
			})
		}
	}
	if o.Audit != nil {
		d.AuditTotal = o.Audit.Total()
		d.Audit = o.Audit.Passes()
	}
	return d
}

// WriteJSON writes the dump to w as indented JSON.
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteCSV writes the dump's counters and histograms as CSV, one section
// per instrument family:
//
//	counter,<name>,<value>
//	histogram,<name>,count,sum,mean,min,max
//	bucket,<name>,<le>,<cumulative count>
//
// Flight-recorder events and audit passes are structured; they export via
// JSON only.
func (d *Dump) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	fl := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range d.Counters {
		if err := cw.Write([]string{"counter", c.Name, strconv.FormatInt(c.Value, 10)}); err != nil {
			return err
		}
	}
	for _, h := range d.Histograms {
		if err := cw.Write([]string{"histogram", h.Name,
			strconv.FormatInt(h.Count, 10), fl(h.Sum), fl(h.Mean), fl(h.Min), fl(h.Max)}); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.LE, 1) {
				le = fl(b.LE)
			}
			if err := cw.Write([]string{"bucket", h.Name, le, strconv.FormatInt(b.Count, 10)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
