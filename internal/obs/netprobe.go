package obs

import (
	"sync"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// NetProbe instruments the packet plane through the netsim.Probe
// observation point: queue depth at enqueue, drops split by cause and
// packet kind, and per-link latency (queuing + serialization +
// propagation) at delivery. Attach it network-wide with
// Network.AttachProbe, or per-link with Link.Attach.
//
// Because probes are the packet plane's only observation hook, a
// simulation without a NetProbe attached runs the exact pre-obs hot path:
// the disabled cost of this instrument is zero by construction.
//
// The probe carries no engine handle: on a sharded engine there is no one
// clock, so each callback reads the observed link's own context — the
// sending side's clock for Enqueue/Drop, the receiving side's for Deliver
// (Link.NowTx / Link.NowRx). A mutex guards the latency-matching map,
// which links in different shards touch concurrently.
//
// Latency is measured by remembering, per (link, packet), when the link
// accepted the packet. Two edge cases lose the enqueue timestamp and are
// skipped rather than guessed: a packet accepted before the probe was
// attached, and a priority-dropping arrival that replaced a queued victim
// (the link transfers the victim's accounting to the arrival without a
// fresh enqueue).
type NetProbe struct {
	o       *Obs
	mu      sync.Mutex
	pending map[pendKey]sim.Time
}

type pendKey struct {
	l *netsim.Link
	p *netsim.Packet
}

// NewNetProbe builds a probe feeding o's packet-plane instruments.
func NewNetProbe(o *Obs) *NetProbe {
	if o == nil {
		panic("obs: NewNetProbe requires an Obs")
	}
	return &NetProbe{o: o, pending: make(map[pendKey]sim.Time)}
}

// Enqueue implements netsim.Probe.
func (np *NetProbe) Enqueue(l *netsim.Link, p *netsim.Packet) {
	now := l.NowTx()
	depth := l.QueueLen() // depth the arrival saw (it is not queued yet)
	np.o.Enqueues.Inc()
	np.o.QueueDepth.Observe(float64(depth))
	np.mu.Lock()
	np.pending[pendKey{l, p}] = now
	np.mu.Unlock()
	np.o.Rec.Record(Event{
		At: now, Kind: EvEnqueue,
		From: int32(l.From), To: int32(l.To),
		Session: int32(p.Session), Layer: int32(p.Layer),
		Seq: p.Seq, Aux: int64(depth),
	})
}

// Drop implements netsim.Probe.
func (np *NetProbe) Drop(l *netsim.Link, p *netsim.Packet) {
	now := l.NowTx()
	cause := DropQueue
	if l.Down() {
		cause = DropLinkDown
		np.o.DropsDown.Inc()
	} else {
		np.o.DropsQueue.Inc()
	}
	if p.Kind == netsim.Control {
		np.o.DropsControl.Inc()
	} else {
		np.o.DropsData.Inc()
	}
	np.mu.Lock()
	delete(np.pending, pendKey{l, p})
	np.mu.Unlock()
	np.o.Rec.Record(Event{
		At: now, Kind: EvDrop,
		From: int32(l.From), To: int32(l.To),
		Session: int32(p.Session), Layer: int32(p.Layer),
		Seq: p.Seq, Aux: cause,
	})
}

// Deliver implements netsim.Probe.
func (np *NetProbe) Deliver(l *netsim.Link, p *netsim.Packet) {
	now := l.NowRx()
	np.o.Delivers.Inc()
	lat := int64(-1)
	k := pendKey{l, p}
	np.mu.Lock()
	t, ok := np.pending[k]
	if ok {
		delete(np.pending, k)
	}
	np.mu.Unlock()
	if ok {
		lat = int64(now - t)
		np.o.LinkLatency.Observe(float64(now-t) / float64(sim.Millisecond))
	}
	np.o.Rec.Record(Event{
		At: now, Kind: EvDeliver,
		From: int32(l.From), To: int32(l.To),
		Session: int32(p.Session), Layer: int32(p.Layer),
		Seq: p.Seq, Aux: lat,
	})
}
