package obs

import (
	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// NetProbe instruments the packet plane through the netsim.Probe
// observation point: queue depth at enqueue, drops split by cause and
// packet kind, and per-link latency (queuing + serialization +
// propagation) at delivery. Attach it network-wide with
// Network.AttachProbe, or per-link with Link.Attach.
//
// Because probes are the packet plane's only observation hook, a
// simulation without a NetProbe attached runs the exact pre-obs hot path:
// the disabled cost of this instrument is zero by construction.
//
// Latency is measured by remembering, per (link, packet), when the link
// accepted the packet. Two edge cases lose the enqueue timestamp and are
// skipped rather than guessed: a packet accepted before the probe was
// attached, and a priority-dropping arrival that replaced a queued victim
// (the link transfers the victim's accounting to the arrival without a
// fresh enqueue).
type NetProbe struct {
	engine  *sim.Engine
	o       *Obs
	pending map[pendKey]sim.Time
}

type pendKey struct {
	l *netsim.Link
	p *netsim.Packet
}

// NewNetProbe builds a probe feeding o's packet-plane instruments.
func NewNetProbe(e *sim.Engine, o *Obs) *NetProbe {
	if e == nil || o == nil {
		panic("obs: NewNetProbe requires an engine and an Obs")
	}
	return &NetProbe{engine: e, o: o, pending: make(map[pendKey]sim.Time)}
}

// Enqueue implements netsim.Probe.
func (np *NetProbe) Enqueue(l *netsim.Link, p *netsim.Packet) {
	now := np.engine.Now()
	depth := l.QueueLen() // depth the arrival saw (it is not queued yet)
	np.o.Enqueues.Inc()
	np.o.QueueDepth.Observe(float64(depth))
	np.pending[pendKey{l, p}] = now
	np.o.Rec.Record(Event{
		At: now, Kind: EvEnqueue,
		From: int32(l.From), To: int32(l.To),
		Session: int32(p.Session), Layer: int32(p.Layer),
		Seq: p.Seq, Aux: int64(depth),
	})
}

// Drop implements netsim.Probe.
func (np *NetProbe) Drop(l *netsim.Link, p *netsim.Packet) {
	now := np.engine.Now()
	cause := DropQueue
	if l.Down() {
		cause = DropLinkDown
		np.o.DropsDown.Inc()
	} else {
		np.o.DropsQueue.Inc()
	}
	if p.Kind == netsim.Control {
		np.o.DropsControl.Inc()
	} else {
		np.o.DropsData.Inc()
	}
	delete(np.pending, pendKey{l, p})
	np.o.Rec.Record(Event{
		At: now, Kind: EvDrop,
		From: int32(l.From), To: int32(l.To),
		Session: int32(p.Session), Layer: int32(p.Layer),
		Seq: p.Seq, Aux: cause,
	})
}

// Deliver implements netsim.Probe.
func (np *NetProbe) Deliver(l *netsim.Link, p *netsim.Packet) {
	now := np.engine.Now()
	np.o.Delivers.Inc()
	lat := int64(-1)
	k := pendKey{l, p}
	if t, ok := np.pending[k]; ok {
		delete(np.pending, k)
		lat = int64(now - t)
		np.o.LinkLatency.Observe(float64(now-t) / float64(sim.Millisecond))
	}
	np.o.Rec.Record(Event{
		At: now, Kind: EvDeliver,
		From: int32(l.From), To: int32(l.To),
		Session: int32(p.Session), Layer: int32(p.Layer),
		Seq: p.Seq, Aux: lat,
	})
}
