// Package obs is the simulator's unified observability layer: typed
// zero-allocation counters and fixed-bucket histograms in a registry, a
// fixed-capacity flight recorder holding the most recent packet / tree /
// controller events, and a controller decision audit log that records, per
// pass, what the controller saw and what it prescribed.
//
// The layer is strictly opt-in and pay-for-what-you-use:
//
//   - Disabled (the default) it costs nothing. The packet plane is observed
//     through netsim.Probe, so with no probe attached the hot path is
//     byte-for-byte the code that ran before this package existed; the
//     mcast/controller hooks are a single nil check. Every instrument's
//     method is also safe on a nil receiver, so call sites never need a
//     guard of their own.
//   - Enabled, the steady-state cost is an integer add (Counter), a bucket
//     scan over a handful of float bounds (Histogram), or a struct copy
//     into a preallocated ring (Recorder). None of them allocate; the
//     obs-gate benchmarks (make bench-obs-gate) pin allocs/op at zero.
//
// Observation never perturbs the simulation: nothing here schedules
// events, draws from the engine's RNG, or mutates model state, so a run
// with observability enabled is event-for-event identical to one without
// — the determinism test in internal/experiments proves it, and the
// export is byte-identical across runs of the same seed.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 counter. The zero value is
// ready to use; all methods are no-ops on a nil receiver so wiring can be
// left unconditioned. Counts move atomically: on a sharded engine the same
// instrument is hit from every shard's worker.
type Counter struct {
	name string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		atomic.AddInt64(&c.v, 1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		atomic.AddInt64(&c.v, n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Name returns the registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Histogram counts observations into fixed buckets. Bucket i counts values
// v <= Bounds[i] (and greater than Bounds[i-1]); one overflow bucket counts
// values above the last bound. Bounds are fixed at registration, so
// Observe never allocates. All methods are no-ops on a nil receiver.
// Observations are serialized by a mutex (min/max/sum update together);
// note the sum of float observations arriving from different shards is
// order-dependent in the last bits, so cross-shard comparisons should key
// on counts, not sums.
type Histogram struct {
	name   string
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; counts has len(bounds)+1
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	// Linear scan: bucket lists are short (≤ ~16) and branch-predictable,
	// which beats binary search at this size and keeps the code alloc-free.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Name returns the registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Registry holds every registered instrument. Registration happens on the
// cold path (setup); hot paths hold the returned *Counter / *Histogram
// directly and never consult the registry again. Instruments are stored
// densely in registration order; exports emit them sorted by name so the
// output is independent of wiring order.
type Registry struct {
	counters []*Counter
	hists    []*Histogram
	byName   map[string]int // name -> index (counters and histograms share the namespace)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if i, ok := r.byName[name]; ok {
		if i >= histBase {
			panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
		}
		return r.counters[i]
	}
	c := &Counter{name: name}
	r.byName[name] = len(r.counters)
	r.counters = append(r.counters, c)
	return c
}

// Histogram registers (or returns the existing) histogram under name with
// the given ascending bucket bounds. Bounds are copied; re-registration
// ignores the new bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if i, ok := r.byName[name]; ok {
		// Histograms and counters share byName but live in separate slices;
		// a histogram's index is offset past the counters namespace.
		if i >= histBase {
			return r.hists[i-histBase]
		}
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.byName[name] = histBase + len(r.hists)
	r.hists = append(r.hists, h)
	return h
}

// histBase offsets histogram indices in Registry.byName so one map can
// address both dense slices.
const histBase = 1 << 30

// Counters returns the registered counters sorted by name.
func (r *Registry) Counters() []*Counter {
	if r == nil {
		return nil
	}
	out := append([]*Counter(nil), r.counters...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Histograms returns the registered histograms sorted by name.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	out := append([]*Histogram(nil), r.hists...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
