package toposense_test

import (
	"fmt"

	"toposense"
)

// ExampleScenario builds the smallest complete system: one source, one
// bottleneck, one receiver, one controller — and shows the receiver
// converging to the number of layers its bottleneck carries.
func ExampleScenario() {
	sc := toposense.NewScenario(42)
	src := sc.AddNode("source")
	rtr := sc.AddNode("router")
	rxNode := sc.AddNode("receiver")
	sc.Connect(src, rtr, 100e6)    // backbone
	sc.Connect(rtr, rxNode, 500e3) // 500 Kbps bottleneck
	sc.Source(src)
	sc.MustController(src)
	rx := sc.MustReceiver(rxNode)

	sc.MustRun(120 * toposense.Second)
	fmt.Printf("subscribed layers: %d\n", rx.Level())
	fmt.Printf("cumulative rate of 4 layers: %.0f Kbps\n", toposense.DefaultLayerRates()[0]/1000*15)
	// Output:
	// subscribed layers: 4
	// cumulative rate of 4 layers: 480 Kbps
}
