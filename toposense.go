// Package toposense is a from-scratch reproduction of "Using Tree Topology
// for Multicast Congestion Control" (Jagannathan & Almeroth, ICPP 2001): an
// application-layer congestion-control system for layered multicast, built
// on a deterministic packet-level network simulator.
//
// This package is the public facade over the implementation packages in
// internal/: it re-exports the types a downstream user composes — the
// simulation engine, the network and multicast models, layered sources,
// receivers, the TopoSense controller, and the evaluation harness — and
// provides a high-level Scenario builder for the common case.
//
// # Quick start
//
//	sc := toposense.NewScenario(42)
//	src := sc.AddNode("source")
//	rtr := sc.AddNode("router")
//	rx := sc.AddNode("receiver")
//	sc.Connect(src, rtr, 100e6)           // 100 Mbps
//	sc.Connect(rtr, rx, 500e3)            // 500 Kbps bottleneck
//	sc.Source(src)                        // 6-layer session 0
//	sc.MustController(src)                // TopoSense agent at the source
//	r := sc.MustReceiver(rx)              // managed receiver
//	sc.MustRun(120 * toposense.Second)
//	fmt.Println(r.Level())                // 4 — what 500 Kbps carries
//
// The Must* builders panic on misassembly; Controller, Receiver,
// ReceiverWith and Run return errors for callers that prefer to handle
// them.
//
// For full control use the re-exported subsystem types directly; the
// examples/ directory shows both styles, and cmd/topobench regenerates the
// paper's published evaluation.
package toposense

import (
	"fmt"
	"math/rand"

	"toposense/internal/controller"
	"toposense/internal/core"
	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/receiver"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topodisc"
)

// Re-exported foundation types. Each alias is the canonical type; see the
// internal package's documentation for full details.
type (
	// Engine is the deterministic discrete-event scheduler.
	Engine = sim.Engine
	// Time is simulated time in integer microseconds.
	Time = sim.Time
	// Network is the packet network: nodes, links, routing.
	Network = netsim.Network
	// Node is a network element (router or host).
	Node = netsim.Node
	// LinkConfig parameterizes one link direction.
	LinkConfig = netsim.LinkConfig
	// MulticastDomain manages groups, trees and join/leave processing.
	MulticastDomain = mcast.Domain
	// Source is a layered media source.
	Source = source.Source
	// SourceConfig parameterizes a source.
	SourceConfig = source.Config
	// Receiver is the controller-managed multicast receiver agent.
	Receiver = receiver.Receiver
	// ReceiverConfig parameterizes a receiver.
	ReceiverConfig = receiver.Config
	// Controller is the per-domain TopoSense controller agent.
	Controller = controller.Controller
	// DiscoveryTool is the multicast topology discovery tool.
	DiscoveryTool = topodisc.Tool
	// Algorithm is the TopoSense decision algorithm.
	Algorithm = core.Algorithm
	// AlgorithmConfig parameterizes the algorithm.
	AlgorithmConfig = core.Config
)

// Re-exported time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
)

// DefaultLayerRates returns the paper's 6-layer rate ladder: 32 Kbps base,
// doubling per layer.
func DefaultLayerRates() []float64 { return source.Rates(source.DefaultLayers) }

// Scenario is a convenience builder assembling the full system — engine,
// network, multicast, discovery, controller — with the paper's defaults.
// Zero-value fields follow the published parameters (200 ms links,
// drop-tail queues, 6 layers, 4 s decision interval).
type Scenario struct {
	engine     *sim.Engine
	network    *netsim.Network
	domain     *mcast.Domain
	seed       int64
	sources    []*source.Source
	receivers  []*receiver.Receiver
	controller *controller.Controller
	started    bool
}

// NewScenario creates an empty scenario with a seeded engine.
func NewScenario(seed int64) *Scenario {
	e := sim.NewEngine(seed)
	n := netsim.New(e)
	return &Scenario{
		engine:  e,
		network: n,
		domain:  mcast.NewDomain(n),
		seed:    seed,
	}
}

// Engine exposes the scenario's simulation engine.
func (s *Scenario) Engine() *sim.Engine { return s.engine }

// Network exposes the scenario's network.
func (s *Scenario) Network() *netsim.Network { return s.network }

// Domain exposes the scenario's multicast domain.
func (s *Scenario) Domain() *mcast.Domain { return s.domain }

// AddNode adds a named node.
func (s *Scenario) AddNode(name string) *netsim.Node { return s.network.AddNode(name) }

// Connect links two nodes symmetrically at the given bandwidth (bits/s)
// with the paper's 200 ms latency and default drop-tail queue.
func (s *Scenario) Connect(a, b *netsim.Node, bps float64) {
	s.network.Connect(a, b, netsim.LinkConfig{Bandwidth: bps, Delay: 200 * sim.Millisecond})
}

// ConnectWith links two nodes with explicit parameters.
func (s *Scenario) ConnectWith(a, b *netsim.Node, cfg netsim.LinkConfig) {
	s.network.Connect(a, b, cfg)
}

// Source attaches a 6-layer CBR session source at the node. The session
// number is the number of sources added so far.
func (s *Scenario) Source(at *netsim.Node) *source.Source {
	return s.SourceWith(at, source.Config{Session: len(s.sources)})
}

// SourceWith attaches a source with an explicit config.
func (s *Scenario) SourceWith(at *netsim.Node, cfg source.Config) *source.Source {
	src := source.New(s.network, s.domain, at, cfg)
	s.sources = append(s.sources, src)
	return src
}

// Controller places the TopoSense controller agent at the node, managing
// every session added so far. Call after the sources. It fails when the
// scenario already has a controller.
func (s *Scenario) Controller(at *netsim.Node) (*controller.Controller, error) {
	if s.controller != nil {
		return nil, fmt.Errorf("toposense: scenario already has a controller")
	}
	sessions := make([]int, len(s.sources))
	layers := source.DefaultLayers
	for i, src := range s.sources {
		sessions[i] = src.Session()
		layers = src.Layers()
	}
	tool := topodisc.NewTool(s.network, s.domain, sessions)
	alg := core.New(core.NewConfig(source.Rates(layers)), rand.New(rand.NewSource(s.seed+1)))
	s.controller = controller.New(s.network, s.domain, at, tool, alg)
	return s.controller, nil
}

// MustController is Controller, panicking on error — for one-liner setups.
func (s *Scenario) MustController(at *netsim.Node) *controller.Controller {
	c, err := s.Controller(at)
	if err != nil {
		panic(err)
	}
	return c
}

// Receiver attaches a managed receiver for session 0 at the node, reporting
// to the scenario's controller. Use ReceiverWith for other sessions.
func (s *Scenario) Receiver(at *netsim.Node) (*receiver.Receiver, error) {
	return s.ReceiverWith(at, receiver.Config{Session: 0})
}

// MustReceiver is Receiver, panicking on error — for one-liner setups.
func (s *Scenario) MustReceiver(at *netsim.Node) *receiver.Receiver {
	rx, err := s.Receiver(at)
	if err != nil {
		panic(err)
	}
	return rx
}

// ReceiverWith attaches a receiver with an explicit config; the Controller
// and MaxLayers fields are filled from the scenario when zero. It fails
// when no controller has been added yet.
func (s *Scenario) ReceiverWith(at *netsim.Node, cfg receiver.Config) (*receiver.Receiver, error) {
	if s.controller == nil {
		return nil, fmt.Errorf("toposense: add the Controller before receivers")
	}
	if cfg.MaxLayers == 0 {
		cfg.MaxLayers = source.DefaultLayers
	}
	if cfg.InitialLevel == 0 {
		cfg.InitialLevel = 1
	}
	if cfg.Controller == 0 {
		cfg.Controller = s.controller.Node().ID
	}
	rx := receiver.New(s.network, s.domain, at, cfg)
	s.receivers = append(s.receivers, rx)
	return rx, nil
}

// MustReceiverWith is ReceiverWith, panicking on error.
func (s *Scenario) MustReceiverWith(at *netsim.Node, cfg receiver.Config) *receiver.Receiver {
	rx, err := s.ReceiverWith(at, cfg)
	if err != nil {
		panic(err)
	}
	return rx
}

// Run starts every component (once) and advances simulated time to `until`.
// It fails when the scenario was never given a controller.
func (s *Scenario) Run(until sim.Time) error {
	if !s.started {
		if s.controller == nil {
			return fmt.Errorf("toposense: scenario has no controller")
		}
		s.started = true
		for _, src := range s.sources {
			src.Start()
		}
		s.controller.Start()
		for _, rx := range s.receivers {
			rx.Start()
		}
	}
	s.engine.RunUntil(until)
	return nil
}

// MustRun is Run, panicking on error — for one-liner setups.
func (s *Scenario) MustRun(until sim.Time) {
	if err := s.Run(until); err != nil {
		panic(err)
	}
}

// String summarizes the scenario.
func (s *Scenario) String() string {
	return fmt.Sprintf("scenario: %d nodes, %d sessions, %d receivers",
		s.network.NumNodes(), len(s.sources), len(s.receivers))
}
