# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench bench-micro bench-json bench-scale bench-shards bench-fanin bench-federation bench-churn obs-gate fanin-gate repro repro-quick cover examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) vet ./...
	$(GO) test -race ./...

# Full benchmark suite (one benchmark per paper table/figure + substrate
# microbenchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path microbenchmarks only: engine schedule/fire, packet-plane
# forwarding, multicast replication and the controller's per-interval pass.
# COUNT=5 (or any -count value) produces benchstat-ready samples; pipe
# through scripts/benchdiff.sh to compare commits.
COUNT ?= 1
bench-micro:
	$(GO) test -run '^$$' -bench . -benchmem -count $(COUNT) ./internal/sim ./internal/netsim ./internal/mcast ./internal/core ./internal/obs

# Zero-allocation gate for the observability layer: every obs benchmark
# (instruments, recorder, probed and unprobed forwarding) must report
# 0 allocs/op, or the "zero overhead when off" contract is broken.
obs-gate:
	scripts/benchdiff.sh obs-gate

# Quick sweep with machine-readable results: wall time, events/s and
# packet counts per run land in BENCH_quick.json for cross-commit
# comparison.
bench-json:
	$(GO) run ./cmd/topobench -quick -json BENCH_quick.json

# Scaling curve toward the 10^5-receiver north star: the fig_scale tree
# ladder, exported to BENCH_scale.json for cross-commit tracking. The
# largest point is a few minutes of wall clock on one core.
bench-scale:
	$(GO) run ./cmd/topobench -fig fig_scale -json BENCH_scale.json

# Shard speedup capture: the fig_scale tree ladder run on both engines —
# single-threaded baseline plus a $(SHARDS)-worker sharded twin per point —
# exported to BENCH_shards.json. The speedup column is each sharded run's
# baseline wall time over its own; the 10^5-receiver point dominates.
SHARDS ?= 4
bench-shards:
	$(GO) run ./cmd/topobench -fig fig_scale -topo tree -shards $(SHARDS) -json BENCH_shards.json

# Control-plane fan-in capture: the fig_scale tree ladder run flat and with
# the in-network aggregation layer (an "/agg" twin per point), exported to
# BENCH_fanin.json. The rendered table carries controller messages per
# pass, control bytes per receiver and the aggregation reduction factor;
# the 10^5-receiver point demonstrates the O(receivers) -> O(branching)
# collapse.
bench-fanin:
	$(GO) run ./cmd/topobench -fig fig_scale -topo tree -aggregate -json BENCH_fanin.json

# Zero-allocation gate for the aggregation hot paths: the report-merge and
# suggestion fan-out benchmarks must report 0 allocs/op at steady state.
fanin-gate:
	scripts/benchdiff.sh fanin-gate

# Membership churn capture: the fig_churn join/leave study (TopoSense vs
# RLM under Poisson churn swept around the decision interval, plus a tree
# ladder point) exported to BENCH_churn.json. The rows carry the departure
# lifecycle numbers: deregistrations consumed, graft+prune rates, tree-cost
# drift (leaked branches) and settled-receiver convergence.
bench-churn:
	$(GO) run ./cmd/topobench -fig fig_churn -json BENCH_churn.json

# Hierarchical control plane capture: the flat-vs-federated comparison on
# the tiered topology (fig_federation) exported to BENCH_federation.json.
# The federated rows carry per-domain budget convergence (ceiling, end
# budget, churn count, last-change time) and the cross-domain isolation
# count, which must be 0.
bench-federation:
	$(GO) run ./cmd/topobench -fig fig_federation -json BENCH_federation.json

# Regenerate the paper's evaluation at full scale (~2 minutes, plus the
# fig_scale ladder — see bench-scale — which dominates at full size).
repro:
	$(GO) run ./cmd/topobench

# Scaled-down regeneration (~15 seconds).
repro-quick:
	$(GO) run ./cmd/topobench -quick

cover:
	$(GO) test -cover ./...

# Run every example once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/competing
	$(GO) run ./examples/staleness
	$(GO) run ./examples/domains

clean:
	$(GO) clean ./...
