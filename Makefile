# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench repro repro-quick cover examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark suite (one benchmark per paper table/figure + substrate
# microbenchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation at full scale (~2 minutes).
repro:
	$(GO) run ./cmd/topobench

# Scaled-down regeneration (~15 seconds).
repro-quick:
	$(GO) run ./cmd/topobench -quick

cover:
	$(GO) test -cover ./...

# Run every example once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/competing
	$(GO) run ./examples/staleness
	$(GO) run ./examples/domains

clean:
	$(GO) clean ./...
